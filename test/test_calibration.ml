(* Calibration against the paper's §4.2 basic operation costs (ATM,
   AAL3/4).  These tests pin the simulator's cost model to the published
   measurements so the macro experiments stand on a validated base:

   - remote lock acquisition, manager was last holder:  827 µs
   - remote lock acquisition, one forwarding hop:      1149 µs
   - 8-processor barrier:                              2186 µs
   - remote page fault (4096-byte page):               2792 µs *)

open Tmk_sim
open Tmk_dsm

let check = Alcotest.check

let within pct expected actual =
  let e = float_of_int expected and a = float_of_int actual in
  Float.abs (a -. e) /. e <= pct /. 100.0

let check_within name pct ~expected ~actual =
  if not (within pct expected actual) then
    Alcotest.failf "%s: expected %dus (±%.0f%%), measured %dus" name expected pct
      (actual / 1000)

let base_cfg nprocs = { Config.default with nprocs; pages = 4; seed = 5L }

(* The paper's two round-trip figures, measured over the raw transport. *)
let roundtrip_blocking () =
  let engine = Engine.create ~nprocs:2 in
  let prng = Tmk_util.Prng.create 5L in
  let transport =
    Tmk_net.Transport.create ~engine ~params:Tmk_net.Params.atm_aal34 ~prng ()
  in
  let ping = Tmk_net.Transport.mailbox () and pong = Tmk_net.Transport.mailbox () in
  let t0 = ref Vtime.zero and t1 = ref Vtime.zero in
  Engine.spawn engine 1 (fun () ->
      let () = Tmk_net.Transport.await_value transport ping in
      Tmk_net.Transport.send_value transport ~src:1 ~dst:0 ~bytes:0 pong ());
  Engine.spawn engine 0 (fun () ->
      t0 := Engine.now engine;
      Tmk_net.Transport.send_value transport ~src:0 ~dst:1 ~bytes:0 ping ();
      let () = Tmk_net.Transport.await_value transport pong in
      t1 := Engine.now engine);
  Engine.run engine;
  check_within "blocking round trip" 5.0 ~expected:500_000 ~actual:(Vtime.sub !t1 !t0)

let roundtrip_handlers () =
  let engine = Engine.create ~nprocs:2 in
  let prng = Tmk_util.Prng.create 5L in
  let transport =
    Tmk_net.Transport.create ~engine ~params:Tmk_net.Params.atm_aal34 ~prng ()
  in
  let t0 = ref Vtime.zero and t1 = ref Vtime.zero in
  Engine.spawn engine 1 (fun () -> ());
  Engine.spawn engine 0 (fun () ->
      t0 := Engine.now engine;
      let done_ = Engine.Ivar.create () in
      Tmk_net.Transport.send transport ~src:0 ~dst:1 ~bytes:0 ~deliver:(fun h ->
          Tmk_net.Transport.hsend transport h ~dst:0 ~bytes:0 ~deliver:(fun h2 ->
              Engine.fill engine done_ ~at:(Engine.hnow h2) ()));
      Engine.await done_;
      t1 := Engine.now engine);
  Engine.run engine;
  check_within "handler round trip" 5.0 ~expected:670_000 ~actual:(Vtime.sub !t1 !t0)

(* Time an operation on one processor inside a running cluster. *)
let measure cluster pid op =
  let engine = Protocol.engine cluster in
  let t0 = ref Vtime.zero and t1 = ref Vtime.zero in
  Engine.spawn engine pid (fun () ->
      t0 := Engine.now engine;
      op ();
      t1 := Engine.now engine);
  (t0, t1)

let lock_acquire_manager_last_holder () =
  (* Lock 1 on a 2-processor cluster is managed by processor 1, which also
     starts out holding the token: processor 0's acquire is the paper's
     "manager was the last processor to hold the lock" case. *)
  let cluster = Protocol.create (base_cfg 2) in
  let engine = Protocol.engine cluster in
  Engine.spawn engine 1 (fun () -> ());
  let t0, t1 = measure cluster 0 (fun () -> Protocol.acquire cluster ~pid:0 ~lock:1) in
  Engine.run engine;
  check_within "lock acquire (manager holds)" 5.0 ~expected:827_000
    ~actual:(Vtime.sub !t1 !t0)

let lock_acquire_forwarded () =
  (* Processor 2 acquires and releases first, so the manager (processor 1)
     must forward processor 0's later request. *)
  let cluster = Protocol.create (base_cfg 3) in
  let engine = Protocol.engine cluster in
  Engine.spawn engine 1 (fun () -> ());
  Engine.spawn engine 2 (fun () ->
      Protocol.acquire cluster ~pid:2 ~lock:1;
      Protocol.release cluster ~pid:2 ~lock:1);
  let t0, t1 =
    measure cluster 0 (fun () ->
        (* wait out processor 2's acquire, then measure ours *)
        Engine.advance Category.Computation (Vtime.ms 20);
        let s = Engine.now engine in
        Protocol.acquire cluster ~pid:0 ~lock:1;
        ignore s)
  in
  Engine.run engine;
  (* subtract the 20ms wait *)
  let measured = Vtime.sub (Vtime.sub !t1 !t0) (Vtime.ms 20) in
  check_within "lock acquire (forwarded)" 5.0 ~expected:1_149_000 ~actual:measured

let barrier_8_processors () =
  let cluster = Protocol.create (base_cfg 8) in
  let engine = Protocol.engine cluster in
  let finish = Array.make 8 Vtime.zero in
  for p = 0 to 7 do
    Engine.spawn engine p (fun () ->
        Protocol.barrier cluster ~pid:p ~id:0;
        finish.(p) <- Engine.now engine)
  done;
  Engine.run engine;
  let latest = Array.fold_left Vtime.max Vtime.zero finish in
  check_within "8-processor barrier" 5.0 ~expected:2_186_000 ~actual:latest

let remote_page_fault () =
  (* Processor 1 reads a page it has never cached: full 4096-byte fetch
     from processor 0 (the initial copyset). *)
  let cluster = Protocol.create (base_cfg 2) in
  let engine = Protocol.engine cluster in
  Engine.spawn engine 0 (fun () -> ());
  let node1 = Protocol.node cluster 1 in
  let t0, t1 =
    measure cluster 1 (fun () -> ignore (Tmk_mem.Vm.read_int node1.Node.vm 0))
  in
  Engine.run engine;
  check_within "remote page fault" 5.0 ~expected:2_792_000 ~actual:(Vtime.sub !t1 !t0)

(* The paper's two round-trip figures bound our request/reply paths; the
   exact transport timing identity is in test_net.ml.  Here we record the
   absolute numbers once so regressions in any constant show up. *)
let print_current_numbers () =
  (* not an assertion: a self-documenting measurement echo *)
  let cluster = Protocol.create (base_cfg 2) in
  let engine = Protocol.engine cluster in
  Engine.spawn engine 1 (fun () -> ());
  let t0, t1 = measure cluster 0 (fun () -> Protocol.acquire cluster ~pid:0 ~lock:1) in
  Engine.run engine;
  check Alcotest.bool "measured something" true (Vtime.sub !t1 !t0 > 0)

let suite =
  [
    Alcotest.test_case "round trip, blocked receive (500us)" `Quick roundtrip_blocking;
    Alcotest.test_case "round trip, handlers both ends (670us)" `Quick roundtrip_handlers;
    Alcotest.test_case "lock acquire, manager last holder (827us)" `Quick
      lock_acquire_manager_last_holder;
    Alcotest.test_case "lock acquire, forwarded (1149us)" `Quick lock_acquire_forwarded;
    Alcotest.test_case "8-processor barrier (2186us)" `Quick barrier_8_processors;
    Alcotest.test_case "remote page fault (2792us)" `Quick remote_page_fault;
    Alcotest.test_case "measurement harness sanity" `Quick print_current_numbers;
  ]
