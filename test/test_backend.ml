(* Cross-backend equivalence and capability tests.

   The coherence backends differ in everything they are allowed to
   differ in — message counts, timing, protection traffic — and in
   nothing else: a data-race-free program must compute the same answer
   under every backend.  These tests enforce that end-to-end:

   - all five applications at 8 processors digest identically under
     lazy, eager, tardis and sc-abd;
   - Tardis really keeps vector timestamps off the wire: its trace
     stream contains no interval or write-notice records at all, only
     scalar timestamp syncs;
   - SC-ABD really needs no recovery protocol: a crash run completes
     with an empty recovery list and no [Api.Degraded];
   - the race detector reports the same findings on the racy fixture
     whichever backend runs it;
   - [Config.protocol_of_string] round-trips every backend name, and
     [Protocol.create] rejects configurations asking for capabilities
     the selected backend lacks. *)

open Tmk_dsm
module Harness = Tmk_harness.Harness
module Sink = Tmk_trace.Sink
module Event = Tmk_trace.Event

let check = Alcotest.check

let cfg_of ~app ~protocol =
  Harness.config ~app ~nprocs:8 ~protocol ~net:Tmk_net.Params.atm_aal34

(* ------------------------------------------------------------------ *)
(* Digest equivalence: same answer under every backend.                 *)

let backends = [ Config.Lrc; Config.Erc; Config.Tardis; Config.Sc_abd ]

let equivalence_runs =
  lazy
    (let arms =
       List.concat_map
         (fun app -> List.map (fun protocol -> (app, protocol)) backends)
         Harness.all_apps
     in
     let results =
       Harness.parallel_map ~jobs:4
         (fun (app, protocol) -> snd (Harness.run_checked ~app (cfg_of ~app ~protocol)))
         arms
     in
     let tbl = Hashtbl.create 32 in
     List.iter2 (fun arm digest -> Hashtbl.replace tbl arm digest) arms results;
     tbl)

let digest_equivalence app () =
  let runs = Lazy.force equivalence_runs in
  let reference = Hashtbl.find runs (app, Config.Lrc) in
  check Alcotest.bool "reference digest nonempty" true (reference <> "");
  List.iter
    (fun protocol ->
      check Alcotest.string
        (Printf.sprintf "%s under %s" (Harness.app_name app)
           (Config.protocol_name protocol))
        reference
        (Hashtbl.find runs (app, protocol)))
    backends

(* ------------------------------------------------------------------ *)
(* Tardis: no vector timestamps on the wire.                            *)

let tardis_zero_vector_timestamps () =
  let app = Harness.Jacobi in
  let sink = Sink.create () in
  let _ = Harness.run_cfg ~trace:sink ~app (cfg_of ~app ~protocol:Config.Tardis) in
  let intervals = ref 0 and notices = ref 0 and syncs = ref 0 in
  Sink.iter
    (fun r ->
      match r.Sink.r_ev with
      | Event.Interval_close _ | Event.Interval_recv _ -> incr intervals
      | Event.Write_notice_recv _ -> incr notices
      | Event.Ts_sync _ -> incr syncs
      | _ -> ())
    sink;
  check Alcotest.int "no interval records in the stream" 0 !intervals;
  check Alcotest.int "no write notices in the stream" 0 !notices;
  check Alcotest.bool "scalar timestamp syncs instead" true (!syncs > 0)

(* ------------------------------------------------------------------ *)
(* SC-ABD: crash-stop tolerance with zero recovery.                     *)

let sc_abd_crash_zero_recovery () =
  let app = Harness.Jacobi in
  let cfg = cfg_of ~app ~protocol:Config.Sc_abd in
  let cfg =
    {
      cfg with
      Config.faults =
        Tmk_net.Fault_plan.with_crash Tmk_net.Fault_plan.none ~pid:4
          ~at:(Tmk_sim.Vtime.ms 5000);
    }
  in
  (* Quorum intersection absorbs the minority crash: the run must finish
     normally (no Degraded), detect the death, and rebuild nothing. *)
  let m = Harness.run_cfg ~app cfg in
  let raw = m.Harness.m_raw in
  (match raw.Api.stopped with
  | Some reason -> Alcotest.failf "run stopped: %s" reason
  | None -> ());
  check Alcotest.bool "death detected" false (Protocol.live raw.Api.cluster 4);
  check Alcotest.int "membership epoch bumped" 1 (Protocol.epoch raw.Api.cluster);
  check Alcotest.int "zero recoveries" 0 (List.length raw.Api.recoveries)

(* ------------------------------------------------------------------ *)
(* Race detector: identical findings under every backend.               *)

let racey_findings ~protocol =
  let app = Harness.Racey in
  let cfg = cfg_of ~app ~protocol in
  let race = Tmk_check.Race.create ~nprocs:8 ~pages:cfg.Config.pages () in
  let cfg = { cfg with Config.check = Some (Tmk_check.Checker.create ~race ()) } in
  let _ = Harness.run_cfg ~app cfg in
  (* Compare the distinct racing extents: how many times a race is
     re-observed is interleaving-dependent, which words race is not. *)
  List.sort_uniq compare
    (List.map
       (fun f -> (f.Tmk_check.Race.f_page, f.Tmk_check.Race.f_lo, f.Tmk_check.Race.f_hi))
       (Tmk_check.Race.findings race))

let race_findings_equivalence () =
  let reference = racey_findings ~protocol:Config.Lrc in
  check Alcotest.bool "racy fixture flagged" true (reference <> []);
  List.iter
    (fun protocol ->
      check
        Alcotest.(list (triple int int int))
        (Printf.sprintf "findings under %s" (Config.protocol_name protocol))
        reference
        (racey_findings ~protocol))
    backends

(* ------------------------------------------------------------------ *)
(* Name round-trip and capability validation.                           *)

let protocol_names_roundtrip () =
  List.iter
    (fun p ->
      check Alcotest.bool
        (Printf.sprintf "%s round-trips" (Config.protocol_name p))
        true
        (Config.protocol_of_string (Config.protocol_name p) = p))
    Config.all_protocols;
  (* the historic aliases stay accepted *)
  check Alcotest.bool "lrc alias" true (Config.protocol_of_string "lrc" = Config.Lrc);
  check Alcotest.bool "abd alias" true (Config.protocol_of_string "abd" = Config.Sc_abd);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  match Config.protocol_of_string "mesi" with
  | _ -> Alcotest.fail "unknown protocol accepted"
  | exception Invalid_argument msg ->
    (* the error must enumerate every valid name *)
    List.iter
      (fun p ->
        let name = Config.protocol_name p in
        check Alcotest.bool
          (Printf.sprintf "error lists %s" name)
          true (contains msg name))
      Config.all_protocols

let caps_reject_invalid_configs () =
  let crash_cfg protocol =
    {
      Config.default with
      Config.nprocs = 4;
      pages = 4;
      protocol;
      faults =
        Tmk_net.Fault_plan.with_crash Tmk_net.Fault_plan.none ~pid:2
          ~at:(Tmk_sim.Vtime.ms 10);
    }
  in
  let rejects what f =
    match f () with
    | _ -> Alcotest.failf "%s: accepted" what
    | exception Invalid_argument _ -> ()
  in
  rejects "crash schedule under eager" (fun () -> Protocol.create (crash_cfg Config.Erc));
  rejects "crash schedule under tardis" (fun () ->
      Protocol.create (crash_cfg Config.Tardis));
  rejects "diff_backup under sc-abd" (fun () ->
      Protocol.create
        {
          Config.default with
          Config.nprocs = 4;
          pages = 4;
          protocol = Config.Sc_abd;
          diff_backup = true;
        });
  (* and the capable backends still accept the same requests *)
  ignore (Protocol.create (crash_cfg Config.Lrc));
  ignore (Protocol.create (crash_cfg Config.Sc_abd))

let suite =
  List.map
    (fun app ->
      Alcotest.test_case
        (Printf.sprintf "%s digests identically under every backend"
           (Harness.app_name app))
        `Slow (digest_equivalence app))
    Harness.all_apps
  @ [
      Alcotest.test_case "tardis keeps vector timestamps off the wire" `Slow
        tardis_zero_vector_timestamps;
      Alcotest.test_case "sc-abd rides out a crash with zero recoveries" `Slow
        sc_abd_crash_zero_recovery;
      Alcotest.test_case "race findings identical under every backend" `Slow
        race_findings_equivalence;
      Alcotest.test_case "protocol names round-trip" `Quick protocol_names_roundtrip;
      Alcotest.test_case "capability checks reject invalid configs" `Quick
        caps_reject_invalid_configs;
    ]
