(* Batched consistency traffic and the collective operations.

   Covers the two halves of the batching work: the Api collectives
   (reduce/bcast built from barriers over a hidden slot array) and the
   transport-level frame coalescing (one frame per peer per
   synchronization operation instead of one per interval/diff, the
   responder-side diff cache, and the unbatched ablation mode). *)

open Tmk_dsm

let check = Alcotest.check

let cfg ?(nprocs = 4) ?(pages = 8) ?(batching = true) ?(faults = Tmk_net.Fault_plan.none) ()
    =
  { Config.default with Config.nprocs; pages; batching; faults; seed = 42L }

(* ------------------------------------------------------------------ *)
(* Collectives *)

(* reduce must return the identical total on EVERY processor, and fold in
   pid order (checked with a non-commutative operation). *)
let collectives_at nprocs () =
  let pages = 2 + (2 * nprocs * 8 / Tmk_mem.Vm.page_size) in
  let sums = Array.make nprocs 0.0 in
  let folds = Array.make nprocs 0 in
  let seen = Array.make nprocs 0 in
  ignore
    (Api.run (cfg ~nprocs ~pages ()) (fun ctx ->
         let pid = Api.pid ctx in
         let data = Api.ialloc ctx nprocs in
         (* root initializes, everyone reads its own slot afterwards *)
         Api.bcast ctx (fun () ->
             for q = 0 to nprocs - 1 do
               Api.iset ctx data q (q + 1)
             done);
         seen.(pid) <- Api.iget ctx data pid;
         sums.(pid) <- Api.reduce_f ctx ( +. ) (float_of_int (pid + 1));
         (* 10*acc + v is order-sensitive: pid order gives the digits
            1..nprocs read left to right *)
         folds.(pid) <- Api.reduce_i ctx (fun acc v -> (10 * acc) + v) (pid + 1)));
  let n = nprocs in
  let expected_sum = float_of_int (n * (n + 1) / 2) in
  let expected_fold = Array.fold_left (fun acc q -> (10 * acc) + q + 1) 0 (Array.init n Fun.id) in
  Array.iteri
    (fun pid got ->
      check (Alcotest.float 0.0) (Printf.sprintf "sum on %d" pid) expected_sum got)
    sums;
  Array.iteri
    (fun pid got -> check Alcotest.int (Printf.sprintf "fold on %d" pid) expected_fold got)
    folds;
  Array.iteri
    (fun pid got -> check Alcotest.int (Printf.sprintf "bcast seen on %d" pid) (pid + 1) got)
    seen

let collectives_2p () = collectives_at 2 ()
let collectives_5p () = collectives_at 5 ()
let collectives_8p () = collectives_at 8 ()
let collectives_32p () = collectives_at 32 ()

let bcast_nonzero_root () =
  let nprocs = 4 in
  let got = Array.make nprocs 0 in
  ignore
    (Api.run (cfg ~nprocs ()) (fun ctx ->
         let data = Api.ialloc ctx 1 in
         Api.bcast ~root:2 ctx (fun () -> Api.iset ctx data 0 77);
         got.(Api.pid ctx) <- Api.iget ctx data 0));
  Array.iteri (fun pid v -> check Alcotest.int (Printf.sprintf "on %d" pid) 77 v) got

(* ------------------------------------------------------------------ *)
(* Determinism: same seed, same configuration => bit-identical runs,
   in both modes, with and without frame loss. *)

let app_cfg ~batching ~faults =
  let app = Tmk_harness.Harness.Jacobi in
  ( app,
    {
      (Tmk_harness.Harness.config ~app ~nprocs:4 ~protocol:Config.Lrc
         ~net:Tmk_net.Params.atm_aal34)
      with
      Config.batching;
      faults;
    } )

let fingerprint ~batching ~faults =
  let app, c = app_cfg ~batching ~faults in
  let m, digest = Tmk_harness.Harness.run_checked ~app c in
  let raw = m.Tmk_harness.Harness.m_raw in
  ( digest,
    raw.Api.total_time,
    raw.Api.messages,
    raw.Api.bytes,
    raw.Api.frames_coalesced,
    raw.Api.retransmissions )

let determinism ~batching ~faults name =
  let a = fingerprint ~batching ~faults and b = fingerprint ~batching ~faults in
  let pr (d, t, m, by, c, r) = Printf.sprintf "%s t=%d m=%d b=%d c=%d r=%d" d t m by c r in
  check Alcotest.string name (pr a) (pr b)

let lossy = Tmk_net.Fault_plan.(with_loss none 0.05)

let batched_deterministic () =
  determinism ~batching:true ~faults:Tmk_net.Fault_plan.none "batched clean";
  determinism ~batching:true ~faults:lossy "batched 5% loss"

let unbatched_deterministic () =
  determinism ~batching:false ~faults:Tmk_net.Fault_plan.none "unbatched clean";
  determinism ~batching:false ~faults:lossy "unbatched 5% loss"

(* ------------------------------------------------------------------ *)
(* Conservation: for identical protocol activity, every coalesced frame
   the batched transport reports is exactly one extra frame the unbatched
   transport sends.  A barrier-only program's protocol activity is fixed
   by its structure (no lock races for timing to perturb), so the law
   must hold exactly. *)

let conservation_body rounds ctx =
  let pid = Api.pid ctx in
  let a = Api.ialloc ctx 64 in
  Api.bcast ctx (fun () ->
      for i = 0 to 63 do
        Api.iset ctx a i i
      done);
  for r = 1 to rounds do
    if pid = r mod Api.nprocs ctx then
      for i = 0 to 63 do
        Api.iset ctx a i (Api.iget ctx a i + 1)
      done;
    Api.barrier ctx r
  done;
  (* everyone reads the final state: diff fetches in both modes *)
  let sum = ref 0 in
  for i = 0 to 63 do
    sum := !sum + Api.iget ctx a i
  done;
  Api.barrier ctx (rounds + 1)

let conservation () =
  let run batching =
    Api.run (cfg ~nprocs:4 ~pages:4 ~batching ()) (conservation_body 6)
  in
  let b = run true and u = run false in
  check Alcotest.bool "batched coalesces" true (b.Api.frames_coalesced > 0);
  check Alcotest.int "unbatched reports none" 0 u.Api.frames_coalesced;
  check Alcotest.int "messages conserved" u.Api.messages
    (b.Api.messages + b.Api.frames_coalesced);
  (* every extra fragment pays its own frame header *)
  check Alcotest.bool "unbatched pays more bytes" true (u.Api.bytes > b.Api.bytes)

(* ------------------------------------------------------------------ *)
(* Diff cache: when several processors fetch the same diff from one
   responder, the second fetch is served from the cache.  Unbatched mode
   never touches the cache. *)

let diff_cache_stats batching =
  let r =
    Api.run (cfg ~nprocs:4 ~pages:4 ~batching ()) (fun ctx ->
        let a = Api.ialloc ctx 8 in
        Api.bcast ctx (fun () ->
            for i = 0 to 7 do
              Api.iset ctx a i i
            done);
        (* p1 writes one page; everyone else then fetches its diff from
           p1 after the barrier *)
        if Api.pid ctx = 1 then Api.iset ctx a 0 100;
        Api.barrier ctx 1;
        ignore (Api.iget ctx a 0);
        Api.barrier ctx 2)
  in
  (r.Api.total_stats.Stats.diff_cache_hits, r.Api.total_stats.Stats.diff_cache_misses)

let diff_cache_hits () =
  let hits, misses = diff_cache_stats true in
  check Alcotest.bool "first fetch misses" true (misses >= 1);
  check Alcotest.bool "later fetches hit" true (hits >= 1);
  let u_hits, u_misses = diff_cache_stats false in
  check Alcotest.int "unbatched hits" 0 u_hits;
  check Alcotest.int "unbatched misses" 0 u_misses

(* ------------------------------------------------------------------ *)
(* The SPMD allocation check still raises through the ?trace entry
   point. *)

let alloc_mismatch_raises () =
  let sink = Tmk_trace.Sink.create () in
  let diverging ctx =
    (* processor 1 allocates a different size at step 0 *)
    ignore (Api.malloc ctx ~bytes:(if Api.pid ctx = 1 then 16 else 8))
  in
  let contains ~affix s =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    go 0
  in
  match Api.run ~trace:sink (cfg ~nprocs:2 ()) diverging with
  | _ -> Alcotest.fail "diverging allocation sequence did not raise"
  | exception Invalid_argument msg ->
    check Alcotest.bool "names the divergence" true (contains ~affix:"diverge" msg)

let suite =
  [
    Alcotest.test_case "collectives 2p" `Quick collectives_2p;
    Alcotest.test_case "collectives 5p" `Quick collectives_5p;
    Alcotest.test_case "collectives 8p" `Quick collectives_8p;
    Alcotest.test_case "collectives 32p" `Quick collectives_32p;
    Alcotest.test_case "bcast nonzero root" `Quick bcast_nonzero_root;
    Alcotest.test_case "batched runs deterministic" `Quick batched_deterministic;
    Alcotest.test_case "unbatched runs deterministic" `Quick unbatched_deterministic;
    Alcotest.test_case "frame conservation law" `Quick conservation;
    Alcotest.test_case "diff cache hits" `Quick diff_cache_hits;
    Alcotest.test_case "alloc mismatch raises via ?trace" `Quick alloc_mismatch_raises;
  ]
