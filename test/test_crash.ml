(* Crash-stop failures: failure detection, metadata failover, recovery.

   A processor named in the crash schedule goes silent mid-run; the
   survivors must either complete deterministically (lock tokens
   regenerated, barriers re-counted against the live membership, diffs
   recovered from the backup peer under [Config.diff_backup]) or raise
   the typed [Api.Degraded] when the dead processor held state nobody
   else can reproduce. *)

open Tmk_sim
open Tmk_net
open Tmk_dsm

let check = Alcotest.check

let crash pid ms = Fault_plan.with_crash Fault_plan.none ~pid ~at:(Vtime.ms ms)

let cfg ?(faults = Fault_plan.none) ?(diff_backup = false) ~nprocs ~pages () =
  { Config.default with Config.nprocs; pages; faults; diff_backup; seed = 3L }

(* A compute span long enough that the processor is guaranteed to still
   be running at its planned crash instant. *)
let forever ctx = Api.compute_ns ctx 10_000_000_000

(* ------------------------------------------------------------------ *)
(* Lock failover                                                       *)

let crash_while_holding_lock () =
  (* Processor 2 takes lock 2 — which it also manages — and dies holding
     it.  Recovery must migrate managership, regenerate the token, and
     re-inject the survivors' queued requests: each of them still gets
     its critical section exactly once. *)
  let total = ref (-1) in
  let r =
    Api.run
      (cfg ~faults:(crash 2 10) ~nprocs:4 ~pages:4 ())
      (fun ctx ->
        let counter = Api.ialloc ctx 1 in
        if Api.pid ctx = 2 then begin
          Api.acquire ctx 2;
          forever ctx
        end
        else begin
          (* let processor 2 win the token first *)
          Api.compute_ns ctx 20_000_000;
          Api.with_lock ctx 2 (fun () ->
              Api.iset ctx counter 0 (Api.iget ctx counter 0 + 1));
          Api.barrier ctx 0;
          if Api.pid ctx = 0 then total := Api.iget ctx counter 0
        end)
  in
  check Alcotest.int "every survivor incremented once" 3 !total;
  check Alcotest.bool "membership epoch bumped" true (Protocol.epoch r.Api.cluster = 1);
  check Alcotest.bool "dead processor marked" false (Protocol.live r.Api.cluster 2);
  match r.Api.recoveries with
  | [ rc ] ->
    check Alcotest.int "dead pid" 2 rc.Protocol.rc_pid;
    check Alcotest.int "epoch" 1 rc.Protocol.rc_epoch;
    check Alcotest.bool "lock re-homed" true (rc.Protocol.rc_locks_rehomed >= 1);
    check Alcotest.bool "detected strictly after the crash" true
      (rc.Protocol.rc_detected_at > rc.Protocol.rc_crash_at)
  | other -> Alcotest.failf "expected one recovery, got %d" (List.length other)

(* ------------------------------------------------------------------ *)
(* Barrier failover                                                    *)

let crash_before_barrier_arrival () =
  (* Processor 3 dies without ever arriving; the barrier must complete
     for the survivors once the death is detected. *)
  let crossed = ref 0 in
  let r =
    Api.run
      (cfg ~faults:(crash 3 5) ~nprocs:4 ~pages:4 ())
      (fun ctx ->
        if Api.pid ctx = 3 then forever ctx
        else begin
          Api.barrier ctx 0;
          incr crossed
        end)
  in
  check Alcotest.int "survivors crossed" 3 !crossed;
  check Alcotest.int "one recovery" 1 (List.length r.Api.recoveries)

let crash_mid_barrier_after_arrival () =
  (* Processor 1 arrives at barrier 0 and dies waiting for the release;
     the others arrive later.  The manager must release the survivors
     (the dead arriver gets none) and the next barrier must complete
     against the live membership. *)
  let crossed = ref 0 in
  let r =
    Api.run
      (cfg ~faults:(crash 1 10) ~nprocs:4 ~pages:4 ())
      (fun ctx ->
        if Api.pid ctx <> 1 then Api.compute_ns ctx 30_000_000;
        Api.barrier ctx 0;
        if Api.pid ctx = 1 then forever ctx
        else begin
          Api.barrier ctx 1;
          incr crossed
        end)
  in
  check Alcotest.int "survivors crossed both barriers" 3 !crossed;
  check Alcotest.int "one recovery" 1 (List.length r.Api.recoveries)

let barrier_manager_crash_degrades () =
  (* Processor 0 is the barrier manager and holds every initial page:
     its loss is unrecoverable and must surface as the typed Degraded,
     not a hang or an untyped exception. *)
  match
    Api.run
      (cfg ~faults:(crash 0 5) ~nprocs:4 ~pages:4 ())
      (fun ctx ->
        if Api.pid ctx = 0 then forever ctx
        else begin
          Api.compute_ns ctx 1_000_000;
          Api.barrier ctx 0
        end)
  with
  | _ -> Alcotest.fail "expected Api.Degraded"
  | exception Api.Degraded { pid; reason = _ } ->
    check Alcotest.int "processor 0 named" 0 pid

(* ------------------------------------------------------------------ *)
(* Diff availability                                                   *)

(* Processor 2 writes shared data under a lock, releases, meets a
   barrier (so its write notice reaches everyone), then dies before any
   survivor has fetched the diff.  Processor 1 then reads the data. *)
let run_dead_diff_scenario ~diff_backup =
  let seen = ref nan in
  match
    Api.run
      (cfg ~faults:(crash 2 20) ~diff_backup ~nprocs:4 ~pages:8 ())
      (fun ctx ->
        let a = Api.falloc ctx 64 in
        Api.barrier ctx 0;
        if Api.pid ctx = 2 then begin
          Api.with_lock ctx 1 (fun () -> Api.fset ctx a 0 42.0);
          Api.barrier ctx 1;
          forever ctx
        end
        else begin
          Api.barrier ctx 1;
          Api.compute_ns ctx 100_000_000;
          if Api.pid ctx = 1 then seen := Api.fget ctx a 0;
          Api.barrier ctx 2
        end)
  with
  | r -> Ok (r, !seen)
  | exception Api.Degraded { pid; reason } -> Error (pid, reason)

let dead_diff_recovered_from_backup () =
  match run_dead_diff_scenario ~diff_backup:true with
  | Error (pid, reason) -> Alcotest.failf "degraded (p%d: %s) despite the backup" pid reason
  | Ok (r, seen) ->
    check (Alcotest.float 0.0) "the dead processor's released write survives" 42.0 seen;
    check Alcotest.bool "diffs were mirrored" true
      (r.Api.total_stats.Stats.diff_backups > 0);
    (match r.Api.recoveries with
    | [ rc ] -> check Alcotest.bool "in-flight fetch re-issued" true (rc.Protocol.rc_retries >= 1)
    | other -> Alcotest.failf "expected one recovery, got %d" (List.length other))

let dead_diff_without_backup_degrades () =
  (* Lazy diffing and no mirror: the modification is unrecoverable. *)
  match run_dead_diff_scenario ~diff_backup:false with
  | Ok _ -> Alcotest.fail "expected Api.Degraded: the only diff copy died"
  | Error (_, reason) ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
      at 0
    in
    check Alcotest.bool "reason names the lost diff" true
      (contains reason "died with the crash")

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)

let recovery_is_deterministic () =
  (* Two runs of the same seeded crash scenario must agree exactly:
     timing, traffic, and every field of the recovery record. *)
  let fingerprint () =
    match run_dead_diff_scenario ~diff_backup:true with
    | Error (pid, reason) -> Alcotest.failf "degraded (p%d: %s)" pid reason
    | Ok (r, seen) ->
      ( r.Api.total_time,
        r.Api.messages,
        r.Api.bytes,
        r.Api.retransmissions,
        r.Api.recoveries,
        seen )
  in
  let a = fingerprint () and b = fingerprint () in
  check Alcotest.bool "byte-identical re-run" true (a = b)

(* ------------------------------------------------------------------ *)
(* Provider selection                                                  *)

let page_fetches_spread_over_copyset () =
  (* Garbage collection teaches every node the full copyset of a warm
     page (the keep-bitmap exchange).  Cold fetches after that must hash
     over the members instead of hammering the lowest pid: different
     faulting processors pick different providers. *)
  let sink = Tmk_trace.Sink.create () in
  let page = ref (-1) in
  ignore
    (Api.run ~trace:sink
       { (cfg ~nprocs:8 ~pages:8 ()) with Config.gc_threshold = 1 }
       (fun ctx ->
         let addr = Api.malloc ~align:Tmk_mem.Vm.page_size ctx ~bytes:Tmk_mem.Vm.page_size in
         page := addr / Tmk_mem.Vm.page_size;
         Api.barrier ctx 0;
         (* processors 0-3 each write a disjoint word: four concurrent
            writers, so at GC every one of them validates its modified
            copy and the keep-bitmaps announce copyset {0,1,2,3} to all *)
         if Api.pid ctx <= 3 then
           Api.write_f64 ctx (addr + (512 * Api.pid ctx)) (float_of_int (Api.pid ctx));
         Api.barrier ctx 1;
         (* the GC threshold of 1 forces collection here *)
         Api.barrier ctx 2;
         if Api.pid ctx >= 4 then ignore (Api.read_f64 ctx addr);
         Api.barrier ctx 3));
  let providers = Hashtbl.create 8 in
  let fetches = ref 0 in
  Tmk_trace.Sink.iter
    (fun rec_ ->
      match rec_.Tmk_trace.Sink.r_ev with
      | Tmk_trace.Event.Page_fetch { page = p; from_ } when p = !page && rec_.r_pid >= 4 ->
        incr fetches;
        Hashtbl.replace providers from_ ()
      | _ -> ())
    sink;
  check Alcotest.int "all four cold processors fetched" 4 !fetches;
  check Alcotest.bool "load spread beyond processor 0" true (Hashtbl.length providers >= 3);
  Hashtbl.iter
    (fun from_ () ->
      check Alcotest.bool "provider from the warmed copyset" true (from_ >= 0 && from_ <= 3))
    providers

let suite =
  [
    Alcotest.test_case "crash while holding a lock" `Quick crash_while_holding_lock;
    Alcotest.test_case "crash before barrier arrival" `Quick crash_before_barrier_arrival;
    Alcotest.test_case "crash mid-barrier after arrival" `Quick
      crash_mid_barrier_after_arrival;
    Alcotest.test_case "barrier manager crash degrades" `Quick
      barrier_manager_crash_degrades;
    Alcotest.test_case "dead diff recovered from backup" `Quick
      dead_diff_recovered_from_backup;
    Alcotest.test_case "dead diff without backup degrades" `Quick
      dead_diff_without_backup_degrades;
    Alcotest.test_case "recovery is deterministic" `Quick recovery_is_deterministic;
    Alcotest.test_case "page fetches spread over the copyset" `Quick
      page_fetches_spread_over_copyset;
  ]
