(* Transport tests: timing against the cost model, medium arbitration,
   statistics, and the user-level reliability protocol under loss. *)

open Tmk_sim
open Tmk_net

let check = Alcotest.check

let make_cluster ?plan ?(nprocs = 2) ?(params = Params.atm_aal34) ?(seed = 1L) () =
  let engine = Engine.create ~nprocs in
  let prng = Tmk_util.Prng.create seed in
  let transport = Transport.create ?plan ~engine ~params ~prng () in
  (engine, transport)

(* Analytic expectation for a zero-payload RPC where the server charges no
   time of its own: request takes the SIGIO-handler path, the reply wakes
   the blocked caller. *)
let expected_rpc_roundtrip p =
  let wire payload = Params.wire_time p payload in
  Params.send_cost p 0 + wire 0
  + Params.deliver_handler_cpu p ~fresh:true
  + Params.recv_cost p 0
  + Params.send_cost p 0 + wire 0
  + Params.deliver_blocked_cpu p
  + Params.recv_cost p 0

let rpc_roundtrip_timing () =
  let engine, tr = make_cluster () in
  let p = Params.atm_aal34 in
  Engine.spawn engine 1 (fun () -> ());
  Engine.spawn engine 0 (fun () ->
      let v = Transport.rpc tr ~src:0 ~dst:1 ~bytes:0 ~serve:(fun _h -> (0, 42)) in
      check Alcotest.int "reply" 42 v);
  Engine.run engine;
  check Alcotest.int "roundtrip" (expected_rpc_roundtrip p) (Engine.finish_time engine 0);
  (* The paper's two bounds: 500us blocking both ends, 670us handlers both
     ends; our request-handler/blocked-reply path must sit between. *)
  let rt = Engine.finish_time engine 0 in
  check Alcotest.bool "within paper bounds" true (rt > Vtime.us 500 && rt < Vtime.us 700)

let rpc_counts_messages () =
  let engine, tr = make_cluster () in
  Engine.spawn engine 1 (fun () -> ());
  Engine.spawn engine 0 (fun () ->
      ignore (Transport.rpc tr ~src:0 ~dst:1 ~bytes:100 ~serve:(fun _ -> (200, ()))));
  Engine.run engine;
  check Alcotest.int "two messages" 2 (Transport.messages_sent tr);
  check Alcotest.int "one from each" 1 (Transport.messages_of tr 0);
  check Alcotest.int "one from each" 1 (Transport.messages_of tr 1);
  let p = Params.atm_aal34 in
  let expect = Params.frame_bytes p 100 + Params.frame_bytes p 200 in
  check Alcotest.int "frame bytes" expect (Transport.bytes_sent tr);
  Transport.reset_stats tr;
  check Alcotest.int "reset" 0 (Transport.messages_sent tr)

let min_frame_padding () =
  let p = Params.atm_aal34 in
  check Alcotest.int "padded" p.Params.min_frame_bytes (Params.frame_bytes p 1);
  check Alcotest.int "not padded" (5000 + p.Params.header_bytes) (Params.frame_bytes p 5000)

(* On the shared Ethernet two simultaneous frames serialise; on the ATM
   switch distinct sources transmit in parallel. *)
let medium_arbitration () =
  let arrivals params =
    let engine, tr = make_cluster ~nprocs:3 ~params () in
    let got = ref [] in
    for src = 0 to 1 do
      Engine.spawn engine src (fun () ->
          Transport.send tr ~src ~dst:2 ~bytes:1000 ~deliver:(fun h ->
              got := (src, Engine.hnow h) :: !got))
    done;
    Engine.spawn engine 2 (fun () -> ());
    Engine.run engine;
    List.sort compare !got
  in
  (match arrivals Params.ethernet_udp with
  | [ (0, t0); (1, t1) ] ->
    let occupancy =
      Params.frame_bytes Params.ethernet_udp 1000 * Params.ethernet_udp.Params.wire_ns_per_byte
    in
    (* The second frame waits for the full occupancy of the first, then the
       receiver's handler additionally serialises processing. *)
    check Alcotest.bool "ethernet serialises" true (t1 - t0 >= occupancy)
  | other -> Alcotest.failf "unexpected arrivals: %d" (List.length other));
  match arrivals Params.atm_aal34 with
  | [ (0, t0); (1, t1) ] ->
    (* Both frames arrive together; only handler processing separates the
       two deliveries. *)
    let handler_gap =
      Params.deliver_handler_cpu Params.atm_aal34 ~fresh:true
      + Params.recv_cost Params.atm_aal34 1000
    in
    check Alcotest.bool "atm parallel" true (t1 - t0 <= handler_gap + Vtime.us 1)
  | other -> Alcotest.failf "unexpected arrivals: %d" (List.length other)

let page_transfer_slower_on_ethernet () =
  let time params =
    let engine, tr = make_cluster ~params () in
    Engine.spawn engine 1 (fun () -> ());
    Engine.spawn engine 0 (fun () ->
        ignore (Transport.rpc tr ~src:0 ~dst:1 ~bytes:16 ~serve:(fun _ -> (4096, ()))));
    Engine.run engine;
    Engine.finish_time engine 0
  in
  let atm = time Params.atm_aal34 and eth = time Params.ethernet_udp in
  check Alcotest.bool "ethernet slower" true (eth > atm);
  (* 4 KB at 10 Mbps is ~3.3 ms of wire alone. *)
  check Alcotest.bool "ethernet page >3ms" true (eth > Vtime.ms 3)

let send_value_and_await () =
  let engine, tr = make_cluster () in
  let mb = Transport.mailbox () in
  Engine.spawn engine 0 (fun () ->
      Transport.send_value tr ~src:0 ~dst:1 ~bytes:64 mb "hello");
  Engine.spawn engine 1 (fun () ->
      let v = Transport.await_value tr mb in
      check Alcotest.string "value" "hello" v);
  Engine.run engine;
  check Alcotest.int "one message" 1 (Transport.messages_sent tr)

let parallel_calls () =
  (* Requests in flight concurrently (the §3.5 parallel diff fetch): total
     time must be far less than two sequential RPCs. *)
  let engine, tr = make_cluster ~nprocs:3 () in
  Engine.spawn engine 1 (fun () -> ());
  Engine.spawn engine 2 (fun () -> ());
  Engine.spawn engine 0 (fun () ->
      let p1 = Transport.call tr ~src:0 ~dst:1 ~bytes:16 ~serve:(fun _ -> (500, 1)) in
      let p2 = Transport.call tr ~src:0 ~dst:2 ~bytes:16 ~serve:(fun _ -> (500, 2)) in
      let v1 = Transport.await_reply tr p1 in
      let v2 = Transport.await_reply tr p2 in
      check Alcotest.int "v1" 1 v1;
      check Alcotest.int "v2" 2 v2);
  Engine.run engine;
  let sequential = 2 * expected_rpc_roundtrip Params.atm_aal34 in
  check Alcotest.bool "overlapped" true (Engine.finish_time engine 0 < sequential)

let handler_chained_send () =
  (* A handler can forward to a third party (the lock-forwarding path). *)
  let engine, tr = make_cluster ~nprocs:3 () in
  let mb = Transport.mailbox () in
  Engine.spawn engine 1 (fun () -> ());
  Engine.spawn engine 2 (fun () -> ());
  Engine.spawn engine 0 (fun () ->
      Transport.send tr ~src:0 ~dst:1 ~bytes:32 ~deliver:(fun h ->
          Transport.hsend tr h ~dst:2 ~bytes:32 ~deliver:(fun h2 ->
              Transport.hsend_value tr h2 ~dst:0 ~bytes:32 mb "granted"));
      let v = Transport.await_value tr mb in
      check Alcotest.string "granted" "granted" v);
  Engine.run engine;
  check Alcotest.int "three messages" 3 (Transport.messages_sent tr)

let lossy_rpc_retransmits () =
  let params = Params.with_loss Params.atm_aal34 0.4 in
  let engine, tr = make_cluster ~params ~seed:7L () in
  let served = ref 0 in
  Engine.spawn engine 1 (fun () -> ());
  Engine.spawn engine 0 (fun () ->
      for i = 1 to 20 do
        let v =
          Transport.rpc tr ~src:0 ~dst:1 ~bytes:64 ~serve:(fun _ ->
              incr served;
              (64, i))
        in
        check Alcotest.int "reply" i v
      done);
  Engine.run engine;
  (* All 20 calls completed; the delivery callback ran exactly once per
     call despite duplicates; some frames were lost so retransmissions
     happened. *)
  check Alcotest.int "served exactly once each" 20 !served;
  check Alcotest.bool "retransmissions occurred" true (Transport.retransmissions tr > 0)

let lossy_oneway_delivers_once () =
  let params = Params.with_loss Params.atm_aal34 0.4 in
  let engine, tr = make_cluster ~params ~seed:11L () in
  let delivered = ref 0 in
  let mb = Transport.mailbox () in
  Engine.spawn engine 1 (fun () -> ());
  Engine.spawn engine 0 (fun () ->
      Transport.send tr ~src:0 ~dst:1 ~bytes:32 ~deliver:(fun h ->
          incr delivered;
          Transport.hsend_value tr h ~dst:0 ~bytes:8 mb ());
      Transport.await_value tr mb);
  Engine.run engine;
  check Alcotest.int "delivered once" 1 !delivered

let lossless_runs_have_no_acks () =
  let engine, tr = make_cluster () in
  Engine.spawn engine 1 (fun () -> ());
  Engine.spawn engine 0 (fun () ->
      Transport.send tr ~src:0 ~dst:1 ~bytes:32 ~deliver:(fun _ -> ()));
  Engine.run engine;
  check Alcotest.int "single frame" 1 (Transport.messages_sent tr);
  check Alcotest.int "no retransmissions" 0 (Transport.retransmissions tr)

let message_mix_labels () =
  let engine, tr = make_cluster ~nprocs:2 () in
  Engine.spawn engine 1 (fun () -> ());
  Engine.spawn engine 0 (fun () ->
      ignore (Transport.rpc ~label:"probe" tr ~src:0 ~dst:1 ~bytes:10 ~serve:(fun _ -> (20, ())));
      Transport.send tr ~src:0 ~dst:1 ~bytes:5 ~deliver:(fun _ -> ()));
  Engine.run engine;
  let mix = Transport.message_mix tr in
  let find l = List.find_opt (fun e -> e.Transport.mix_label = l) mix in
  (match find "probe" with
  | Some { Transport.mix_msgs = 1; _ } -> ()
  | _ -> Alcotest.fail "probe counted once");
  (match find "probe-reply" with
  | Some { Transport.mix_msgs = 1; _ } -> ()
  | _ -> Alcotest.fail "reply counted");
  (match find "other" with
  | Some { Transport.mix_msgs = 1; _ } -> ()
  | _ -> Alcotest.fail "unlabelled counted as other");
  check Alcotest.int "total matches" (Transport.messages_sent tr)
    (List.fold_left (fun acc e -> acc + e.Transport.mix_msgs) 0 mix)

let params_validation () =
  Alcotest.check_raises "ethernet aal34"
    (Invalid_argument "Params.of_names: AAL3/4 requires the ATM LAN") (fun () ->
      ignore (Params.of_names ~network:Params.Ethernet ~protocol:Params.Aal34));
  Alcotest.check_raises "bad loss"
    (Invalid_argument "Params.with_loss: rate in [0,1)") (fun () ->
      ignore (Params.with_loss Params.atm_aal34 1.5));
  check Alcotest.string "name" "ATM-AAL3/4" (Params.name Params.atm_aal34);
  check Alcotest.string "name" "Ethernet-UDP" (Params.name Params.ethernet_udp)

let udp_costlier_than_aal34 () =
  let a = Params.atm_aal34 and u = Params.atm_udp in
  check Alcotest.bool "send" true (Params.send_cost u 0 > Params.send_cost a 0);
  check Alcotest.bool "recv" true (Params.recv_cost u 0 > Params.recv_cost a 0);
  check Alcotest.bool "same wire" true (u.Params.wire_ns_per_byte = a.Params.wire_ns_per_byte)

let suite =
  [
    Alcotest.test_case "rpc roundtrip timing" `Quick rpc_roundtrip_timing;
    Alcotest.test_case "rpc counts messages" `Quick rpc_counts_messages;
    Alcotest.test_case "min frame padding" `Quick min_frame_padding;
    Alcotest.test_case "medium arbitration" `Quick medium_arbitration;
    Alcotest.test_case "page transfer ethernet" `Quick page_transfer_slower_on_ethernet;
    Alcotest.test_case "send_value/await_value" `Quick send_value_and_await;
    Alcotest.test_case "parallel calls overlap" `Quick parallel_calls;
    Alcotest.test_case "handler chained send" `Quick handler_chained_send;
    Alcotest.test_case "lossy rpc retransmits" `Quick lossy_rpc_retransmits;
    Alcotest.test_case "lossy oneway delivers once" `Quick lossy_oneway_delivers_once;
    Alcotest.test_case "lossless has no acks" `Quick lossless_runs_have_no_acks;
    Alcotest.test_case "message mix labels" `Quick message_mix_labels;
    Alcotest.test_case "params validation" `Quick params_validation;
    Alcotest.test_case "udp costlier than aal34" `Quick udp_costlier_than_aal34;
  ]
