(* Tests of the discrete-event engine: time accounting, handler CPU
   stealing, ivar blocking, determinism, deadlock detection. *)

open Tmk_sim

let check = Alcotest.check
let us = Vtime.us

(* A single process that computes 100us finishes at 100us. *)
let single_advance () =
  let e = Engine.create ~nprocs:1 in
  Engine.spawn e 0 (fun () -> Engine.advance Category.Computation (us 100));
  Engine.run e;
  check Alcotest.int "finish" (us 100) (Engine.finish_time e 0);
  check Alcotest.int "busy computation" (us 100) (Engine.busy e 0 Category.Computation);
  check Alcotest.int "busy total" (us 100) (Engine.busy_total e 0)

let sequential_advances () =
  let e = Engine.create ~nprocs:1 in
  Engine.spawn e 0 (fun () ->
      Engine.advance Category.Computation (us 10);
      Engine.advance Category.Unix_comm (us 20);
      Engine.advance Category.Tmk_mem (us 30));
  Engine.run e;
  check Alcotest.int "finish" (us 60) (Engine.finish_time e 0);
  check Alcotest.int "comp" (us 10) (Engine.busy e 0 Category.Computation);
  check Alcotest.int "unix" (us 20) (Engine.busy e 0 Category.Unix_comm);
  check Alcotest.int "tmk" (us 30) (Engine.busy e 0 Category.Tmk_mem)

(* Two processes advance independently in parallel virtual time. *)
let parallel_processes () =
  let e = Engine.create ~nprocs:2 in
  Engine.spawn e 0 (fun () -> Engine.advance Category.Computation (us 100));
  Engine.spawn e 1 (fun () -> Engine.advance Category.Computation (us 250));
  Engine.run e;
  check Alcotest.int "p0" (us 100) (Engine.finish_time e 0);
  check Alcotest.int "p1" (us 250) (Engine.finish_time e 1);
  check Alcotest.int "makespan" (us 250) (Engine.end_time e)

(* An ivar filled by a scheduled event wakes the waiting process at the
   fill time. *)
let ivar_blocking () =
  let e = Engine.create ~nprocs:1 in
  let iv = Engine.Ivar.create () in
  let seen = ref 0 in
  Engine.spawn e 0 (fun () ->
      Engine.advance Category.Computation (us 10);
      seen := Engine.await iv;
      Engine.advance Category.Computation (us 5));
  Engine.schedule e ~at:(us 300) (fun () -> Engine.fill e iv ~at:(us 300) 42);
  Engine.run e;
  check Alcotest.int "value" 42 !seen;
  check Alcotest.int "finish" (us 305) (Engine.finish_time e 0);
  (* Blocked time (10..300) is idle: busy is only 15us. *)
  check Alcotest.int "busy" (us 15) (Engine.busy_total e 0)

let ivar_already_filled () =
  let e = Engine.create ~nprocs:1 in
  let iv = Engine.Ivar.create () in
  Engine.fill e iv ~at:Vtime.zero 7;
  check Alcotest.bool "filled" true (Engine.Ivar.is_filled iv);
  check Alcotest.bool "peek" true (Engine.Ivar.peek iv = Some 7);
  let got = ref 0 in
  Engine.spawn e 0 (fun () ->
      got := Engine.await iv;
      Engine.advance Category.Computation (us 1));
  Engine.run e;
  check Alcotest.int "value" 7 !got;
  check Alcotest.int "no wait" (us 1) (Engine.finish_time e 0)

let ivar_double_fill () =
  let e = Engine.create ~nprocs:1 in
  let iv = Engine.Ivar.create () in
  Engine.fill e iv ~at:Vtime.zero 1;
  Alcotest.check_raises "double fill"
    (Invalid_argument "Engine.fill: ivar already filled") (fun () ->
      Engine.fill e iv ~at:Vtime.zero 2)

(* A handler posted mid-chunk steals CPU: the app's chunk completion is
   pushed back by the handler service time. *)
let handler_steals_from_chunk () =
  let e = Engine.create ~nprocs:1 in
  Engine.spawn e 0 (fun () -> Engine.advance Category.Computation (us 100));
  Engine.post_handler e ~pid:0 ~at:(us 40) (fun h ->
      Engine.hcharge h Category.Unix_comm (us 25));
  Engine.run e;
  (* 100us of app work + 25us stolen = 125us finish. *)
  check Alcotest.int "finish postponed" (us 125) (Engine.finish_time e 0);
  check Alcotest.int "handler charge" (us 25) (Engine.busy e 0 Category.Unix_comm);
  check Alcotest.int "app charge" (us 100) (Engine.busy e 0 Category.Computation)

(* A handler while the app is blocked does NOT delay it beyond its own
   service (idle overlap). *)
let handler_during_idle () =
  let e = Engine.create ~nprocs:1 in
  let iv = Engine.Ivar.create () in
  Engine.spawn e 0 (fun () -> ignore (Engine.await iv));
  Engine.post_handler e ~pid:0 ~at:(us 10) (fun h ->
      Engine.hcharge h Category.Unix_comm (us 30));
  Engine.schedule e ~at:(us 100) (fun () -> Engine.fill e iv ~at:(us 100) ());
  Engine.run e;
  check Alcotest.int "finish at fill" (us 100) (Engine.finish_time e 0)

(* If the awaited reply arrives while a handler occupies the CPU, the app
   resumes when the handler completes. *)
let resume_waits_for_handler () =
  let e = Engine.create ~nprocs:1 in
  let iv = Engine.Ivar.create () in
  Engine.spawn e 0 (fun () -> ignore (Engine.await iv));
  Engine.post_handler e ~pid:0 ~at:(us 90) (fun h ->
      Engine.hcharge h Category.Unix_comm (us 50));
  Engine.schedule e ~at:(us 100) (fun () -> Engine.fill e iv ~at:(us 100) ());
  Engine.run e;
  (* Handler runs 90..140; fill at 100; resume at 140. *)
  check Alcotest.int "resume after handler" (us 140) (Engine.finish_time e 0)

(* Handlers on one processor serialise FIFO. *)
let handlers_serialise () =
  let e = Engine.create ~nprocs:1 in
  let order = ref [] in
  let log h tag =
    order := (tag, Engine.hnow h) :: !order;
    Engine.hcharge h Category.Unix_comm (us 10)
  in
  Engine.post_handler e ~pid:0 ~at:(us 5) (fun h -> log h "a");
  Engine.post_handler e ~pid:0 ~at:(us 5) (fun h -> log h "b");
  Engine.post_handler e ~pid:0 ~at:(us 7) (fun h -> log h "c");
  Engine.spawn e 0 (fun () -> ());
  Engine.run e;
  let got = List.rev !order in
  check
    Alcotest.(list (pair string int))
    "fifo with serialised starts"
    [ ("a", us 5); ("b", us 15); ("c", us 25) ]
    got

(* hnow advances as the handler charges. *)
let hnow_tracks_charges () =
  let e = Engine.create ~nprocs:1 in
  let samples = ref [] in
  Engine.post_handler e ~pid:0 ~at:(us 100) (fun h ->
      samples := Engine.hnow h :: !samples;
      Engine.hcharge h Category.Tmk_mem (us 7);
      samples := Engine.hnow h :: !samples;
      Engine.hcharge h Category.Tmk_other (us 3);
      samples := Engine.hnow h :: !samples);
  Engine.spawn e 0 (fun () -> ());
  Engine.run e;
  check Alcotest.(list int) "hnow" [ us 100; us 107; us 110 ] (List.rev !samples)

(* Deadlock: a process waiting on an ivar nobody fills. *)
let deadlock_detection () =
  let e = Engine.create ~nprocs:2 in
  let iv = Engine.Ivar.create () in
  Engine.spawn e 0 (fun () -> ignore (Engine.await iv));
  Engine.spawn e 1 (fun () -> Engine.advance Category.Computation (us 5));
  (match Engine.run e with
  | () -> Alcotest.fail "expected deadlock"
  | exception Engine.Deadlock [ 0 ] -> ()
  | exception Engine.Deadlock other ->
    Alcotest.failf "wrong pids: %s" (String.concat "," (List.map string_of_int other)))

(* Cancelled events do not run. *)
let cancellable_events () =
  let e = Engine.create ~nprocs:1 in
  let fired = ref false in
  let cancel = Engine.schedule_cancellable e ~at:(us 50) (fun () -> fired := true) in
  Engine.schedule e ~at:(us 10) (fun () -> cancel ());
  Engine.spawn e 0 (fun () -> ());
  Engine.run e;
  check Alcotest.bool "not fired" false !fired

(* Scheduling in the past is rejected. *)
let no_past_events () =
  let e = Engine.create ~nprocs:1 in
  Engine.spawn e 0 (fun () ->
      Engine.advance Category.Computation (us 10);
      (* now = 10us; scheduling at 5us must fail *)
      match Engine.schedule e ~at:(us 5) (fun () -> ()) with
      | () -> Alcotest.fail "expected invalid_arg"
      | exception Invalid_argument _ -> ());
  Engine.run e

(* Determinism: identical runs produce byte-identical typed event
   streams (compared through the JSONL encoding, which is injective on
   records). *)
let deterministic_trace () =
  let run_once () =
    let e = Engine.create ~nprocs:4 in
    let sink = Tmk_trace.Sink.create () in
    Engine.set_sink e sink;
    let ivs = Array.init 4 (fun _ -> Engine.Ivar.create ()) in
    for p = 0 to 3 do
      Engine.spawn e p (fun () ->
          Engine.advance Category.Computation (us (10 * (p + 1)));
          Engine.trace e (Printf.sprintf "p%d-computed" p);
          (* everyone signals the next processor, ring-style *)
          Engine.fill e ivs.((p + 1) mod 4) ~at:(Engine.now e) p;
          let from = Engine.await ivs.(p) in
          Engine.trace e (Printf.sprintf "p%d-got-%d" p from))
    done;
    Engine.run e;
    Tmk_trace.Jsonl.to_string sink
  in
  let first = run_once () in
  check Alcotest.bool "stream non-empty" true (String.length first > 0);
  check Alcotest.string "same trace" first (run_once ())

(* Two processes exchanging through ivars: time of a "round trip". *)
let ping_pong_timing () =
  let e = Engine.create ~nprocs:2 in
  let ping = Engine.Ivar.create () and pong = Engine.Ivar.create () in
  Engine.spawn e 0 (fun () ->
      Engine.advance Category.Computation (us 10);
      Engine.fill e ping ~at:(Engine.now e) ();
      ignore (Engine.await pong);
      Engine.advance Category.Computation (us 1));
  Engine.spawn e 1 (fun () ->
      ignore (Engine.await ping);
      Engine.advance Category.Computation (us 20);
      Engine.fill e pong ~at:(Engine.now e) ());
  Engine.run e;
  check Alcotest.int "p0 finish" (us 31) (Engine.finish_time e 0);
  check Alcotest.int "p1 finish" (us 30) (Engine.finish_time e 1)

(* Multiple handler thefts extend the same chunk cumulatively. *)
let multiple_thefts () =
  let e = Engine.create ~nprocs:1 in
  Engine.spawn e 0 (fun () -> Engine.advance Category.Computation (us 100));
  Engine.post_handler e ~pid:0 ~at:(us 10) (fun h -> Engine.hcharge h Category.Unix_comm (us 20));
  Engine.post_handler e ~pid:0 ~at:(us 50) (fun h -> Engine.hcharge h Category.Unix_comm (us 30));
  Engine.run e;
  check Alcotest.int "finish" (us 150) (Engine.finish_time e 0)

(* A handler arriving during the theft-extension window still extends. *)
let theft_during_extension () =
  let e = Engine.create ~nprocs:1 in
  Engine.spawn e 0 (fun () -> Engine.advance Category.Computation (us 100));
  (* First handler at 95 extends chunk to 125; second at 110 (within the
     extension) extends to 145. *)
  Engine.post_handler e ~pid:0 ~at:(us 95) (fun h -> Engine.hcharge h Category.Unix_comm (us 25));
  Engine.post_handler e ~pid:0 ~at:(us 110) (fun h -> Engine.hcharge h Category.Unix_comm (us 20));
  Engine.run e;
  check Alcotest.int "finish" (us 145) (Engine.finish_time e 0)

let vtime_pp () =
  let s v = Format.asprintf "%a" Vtime.pp v in
  check Alcotest.string "ns" "12ns" (s (Vtime.ns 12));
  check Alcotest.string "us" "1.50us" (s (Vtime.ns 1500));
  check Alcotest.string "ms" "2.000ms" (s (Vtime.ms 2));
  check Alcotest.string "s" "3.0000s" (s (Vtime.s 3))

let vtime_conversions () =
  check (Alcotest.float 1e-12) "to_us" 1.5 (Vtime.to_us (Vtime.ns 1500));
  check (Alcotest.float 1e-12) "to_ms" 0.25 (Vtime.to_ms (Vtime.us 250));
  check (Alcotest.float 1e-12) "to_s" 2.0 (Vtime.to_s (Vtime.s 2));
  check Alcotest.int "of_us_float rounds" 1500 (Vtime.of_us_float 1.4999)

(* Property: for any schedule of app advances and handler charges, the
   per-category busy sums equal exactly what was charged, processes finish
   no earlier than their total app time, and the engine is deterministic. *)
let random_schedule_accounting =
  let gen =
    QCheck.Gen.(
      int_range 1 4 >>= fun nprocs ->
      list_size (int_range 0 20)
        (triple (int_range 0 (nprocs - 1)) (int_range 1 500) (int_range 0 1))
      >>= fun ops -> return (nprocs, ops))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"random schedules account exactly"
       (QCheck.make
          ~print:(fun (n, ops) -> Printf.sprintf "nprocs=%d ops=%d" n (List.length ops))
          gen)
       (fun (nprocs, ops) ->
         let e = Engine.create ~nprocs in
         (* split ops: per-proc app advances, plus handlers posted at fixed
            times *)
         let app_time = Array.make nprocs 0 in
         let handler_time = Array.make nprocs 0 in
         List.iteri
           (fun i (p, dt, kind) ->
             if kind = 0 then app_time.(p) <- app_time.(p) + us dt
             else begin
               handler_time.(p) <- handler_time.(p) + us dt;
               Engine.post_handler e ~pid:p ~at:(us (i * 37)) (fun h ->
                   Engine.hcharge h Category.Unix_comm (us dt))
             end)
           ops;
         for p = 0 to nprocs - 1 do
           let total = app_time.(p) in
           Engine.spawn e p (fun () ->
               if total > 0 then Engine.advance Category.Computation total)
         done;
         Engine.run e;
         let ok = ref true in
         for p = 0 to nprocs - 1 do
           if Engine.busy e p Category.Computation <> app_time.(p) then ok := false;
           if Engine.busy e p Category.Unix_comm <> handler_time.(p) then ok := false;
           if Engine.finish_time e p < app_time.(p) then ok := false;
           (* handlers can only delay the app by at most their total *)
           if Engine.finish_time e p > app_time.(p) + handler_time.(p) then ok := false
         done;
         !ok))

let suite =
  [
    random_schedule_accounting;
    Alcotest.test_case "single advance" `Quick single_advance;
    Alcotest.test_case "sequential advances" `Quick sequential_advances;
    Alcotest.test_case "parallel processes" `Quick parallel_processes;
    Alcotest.test_case "ivar blocking" `Quick ivar_blocking;
    Alcotest.test_case "ivar already filled" `Quick ivar_already_filled;
    Alcotest.test_case "ivar double fill" `Quick ivar_double_fill;
    Alcotest.test_case "handler steals from chunk" `Quick handler_steals_from_chunk;
    Alcotest.test_case "handler during idle" `Quick handler_during_idle;
    Alcotest.test_case "resume waits for handler" `Quick resume_waits_for_handler;
    Alcotest.test_case "handlers serialise" `Quick handlers_serialise;
    Alcotest.test_case "hnow tracks charges" `Quick hnow_tracks_charges;
    Alcotest.test_case "deadlock detection" `Quick deadlock_detection;
    Alcotest.test_case "cancellable events" `Quick cancellable_events;
    Alcotest.test_case "no past events" `Quick no_past_events;
    Alcotest.test_case "deterministic trace" `Quick deterministic_trace;
    Alcotest.test_case "ping pong timing" `Quick ping_pong_timing;
    Alcotest.test_case "multiple thefts" `Quick multiple_thefts;
    Alcotest.test_case "theft during extension" `Quick theft_during_extension;
    Alcotest.test_case "vtime pp" `Quick vtime_pp;
    Alcotest.test_case "vtime conversions" `Quick vtime_conversions;
  ]
