(* Fault injection and recovery: the deterministic fault plans, the
   reliability protocol's backoff/retry budget/dedup-table hygiene, and
   the end-to-end robustness criterion — every application computes
   bit-identical DSM results whatever the (seeded) medium does to the
   frames. *)

open Tmk_sim
open Tmk_net
open Tmk_dsm
open Tmk_apps

let check = Alcotest.check

let lossy rate = Fault_plan.with_loss Fault_plan.none rate

let cfg ?(faults = Fault_plan.none) ~nprocs ~pages () =
  { Config.default with Config.nprocs; pages; faults; seed = 3L }

(* ------------------------------------------------------------------ *)
(* Fault_plan unit behaviour                                           *)

let plan_validation () =
  Alcotest.check_raises "loss out of range"
    (Invalid_argument "Fault_plan: loss rate 1.5 not in [0,1)") (fun () ->
      ignore (Fault_plan.with_loss Fault_plan.none 1.5));
  Alcotest.check_raises "dup out of range"
    (Invalid_argument "Fault_plan: duplication rate -0.1 not in [0,1)") (fun () ->
      ignore (Fault_plan.with_dup Fault_plan.none (-0.1)));
  check Alcotest.bool "none is not faulty" false (Fault_plan.is_faulty Fault_plan.none);
  check Alcotest.bool "loss is faulty" true (Fault_plan.is_faulty (lossy 0.1));
  let stall_only =
    Fault_plan.with_stall Fault_plan.none ~pid:1 ~start:Vtime.zero ~len:(Vtime.ms 1)
  in
  check Alcotest.bool "stalls alone are not faulty" false (Fault_plan.is_faulty stall_only)

let plan_link_loss () =
  let p = Fault_plan.with_link_loss (lossy 0.05) ~src:0 ~dst:1 0.5 in
  check (Alcotest.float 1e-9) "override wins" 0.5 (Fault_plan.loss_for p ~src:0 ~dst:1);
  check (Alcotest.float 1e-9) "directed" 0.05 (Fault_plan.loss_for p ~src:1 ~dst:0);
  check (Alcotest.float 1e-9) "others global" 0.05 (Fault_plan.loss_for p ~src:2 ~dst:3)

let plan_stall_until () =
  let p =
    Fault_plan.with_stall
      (Fault_plan.with_stall Fault_plan.none ~pid:1 ~start:(Vtime.us 100) ~len:(Vtime.us 50))
      ~pid:1 ~start:(Vtime.us 150) ~len:(Vtime.us 50)
  in
  check Alcotest.int "before window" (Vtime.us 90)
    (Fault_plan.stall_until p ~pid:1 ~at:(Vtime.us 90));
  (* abutting windows chain to the end of the second *)
  check Alcotest.int "inside chains" (Vtime.us 200)
    (Fault_plan.stall_until p ~pid:1 ~at:(Vtime.us 120));
  check Alcotest.int "other pid unaffected" (Vtime.us 120)
    (Fault_plan.stall_until p ~pid:0 ~at:(Vtime.us 120))

let plan_parse_stalls () =
  (match Fault_plan.parse_stalls "1@2000+500, 3@0+10000" with
  | [ a; b ] ->
    check Alcotest.int "pid" 1 a.Fault_plan.st_pid;
    check Alcotest.int "start" (Vtime.us 2000) a.Fault_plan.st_start;
    check Alcotest.int "len" (Vtime.us 500) a.Fault_plan.st_len;
    check Alcotest.int "pid b" 3 b.Fault_plan.st_pid
  | other -> Alcotest.failf "expected 2 windows, got %d" (List.length other));
  check Alcotest.int "empty spec" 0 (List.length (Fault_plan.parse_stalls ""));
  Alcotest.check_raises "malformed"
    (Invalid_argument "Fault_plan.parse_stalls: \"nonsense\" is not pid@start_us+len_us")
    (fun () -> ignore (Fault_plan.parse_stalls "nonsense"))

let backoff_schedule () =
  let p = Params.atm_aal34 in
  check Alcotest.int "first timer is the base timeout" p.Params.retransmit_timeout
    (Params.retransmit_delay p ~attempt:1);
  check Alcotest.int "doubles" (Vtime.scale p.Params.retransmit_timeout 2)
    (Params.retransmit_delay p ~attempt:2);
  check Alcotest.int "caps" p.Params.retransmit_backoff_cap
    (Params.retransmit_delay p ~attempt:50);
  check Alcotest.bool "monotone" true
    (Params.retransmit_delay p ~attempt:3 >= Params.retransmit_delay p ~attempt:2)

(* ------------------------------------------------------------------ *)
(* Transport under faults                                              *)

let make ?plan ?(nprocs = 2) ?(seed = 1L) () =
  let engine = Engine.create ~nprocs in
  let prng = Tmk_util.Prng.create seed in
  let transport = Transport.create ?plan ~engine ~params:Params.atm_aal34 ~prng () in
  (engine, transport)

let dedup_table_drains () =
  (* After a lossy run quiesces, every message has been acked and its
     copies accounted for: the duplicate-suppression table must be empty
     (it must not grow with run length), and so must the event queue. *)
  let engine, tr = make ~plan:(lossy 0.3) ~seed:7L () in
  let served = ref 0 in
  Engine.spawn engine 1 (fun () -> ());
  Engine.spawn engine 0 (fun () ->
      for _ = 1 to 50 do
        ignore (Transport.rpc tr ~src:0 ~dst:1 ~bytes:32 ~serve:(fun _ -> incr served; (32, ())))
      done);
  Engine.run engine;
  check Alcotest.int "served exactly once each" 50 !served;
  check Alcotest.bool "retransmissions happened" true (Transport.retransmissions tr > 0);
  check Alcotest.int "dedup table empty" 0 (Transport.dedup_entries tr);
  check Alcotest.int "event queue empty" 0 (Engine.pending_events engine)

let reset_stats_clears_dedup () =
  let engine, tr = make ~plan:(lossy 0.3) ~seed:7L () in
  Engine.spawn engine 1 (fun () -> ());
  Engine.spawn engine 0 (fun () ->
      ignore (Transport.rpc tr ~src:0 ~dst:1 ~bytes:8 ~serve:(fun _ -> (8, ()))));
  Engine.run engine;
  Transport.reset_stats tr;
  check Alcotest.int "counters" 0 (Transport.messages_sent tr);
  check Alcotest.int "retrans" 0 (Transport.retransmissions tr);
  check Alcotest.int "dedup" 0 (Transport.dedup_entries tr)

let duplication_suppressed () =
  let plan = Fault_plan.with_dup Fault_plan.none 0.5 in
  let engine, tr = make ~plan ~seed:5L () in
  let delivered = ref 0 in
  Engine.spawn engine 1 (fun () -> ());
  Engine.spawn engine 0 (fun () ->
      for _ = 1 to 30 do
        Transport.send tr ~src:0 ~dst:1 ~bytes:16 ~deliver:(fun _ -> incr delivered)
      done);
  Engine.run engine;
  check Alcotest.int "each delivered exactly once" 30 !delivered;
  check Alcotest.bool "medium injected copies" true (Transport.duplicates_injected tr > 0);
  check Alcotest.bool "copies were filtered" true (Transport.duplicates_suppressed tr > 0);
  check Alcotest.int "dedup table empty" 0 (Transport.dedup_entries tr)

let reordering_is_exactly_once () =
  let plan = Fault_plan.with_reorder ~window:(Vtime.us 500) Fault_plan.none 0.9 in
  let engine, tr = make ~plan ~seed:5L () in
  let got = ref [] in
  Engine.spawn engine 1 (fun () -> ());
  Engine.spawn engine 0 (fun () ->
      for i = 1 to 20 do
        Transport.send tr ~src:0 ~dst:1 ~bytes:16 ~deliver:(fun _ -> got := i :: !got);
        Engine.advance Tmk_sim.Category.Computation (Vtime.us 20)
      done);
  Engine.run engine;
  check Alcotest.int "all delivered" 20 (List.length !got);
  check
    Alcotest.(list int)
    "each exactly once"
    (List.init 20 (fun i -> i + 1))
    (List.sort compare !got)

let stalls_delay_delivery () =
  (* A frame arriving during the receiver's stall window is served only
     once the window ends; no reliability machinery engages. *)
  let plan =
    Fault_plan.with_stall Fault_plan.none ~pid:1 ~start:Vtime.zero ~len:(Vtime.ms 5)
  in
  let engine, tr = make ~plan () in
  let at = ref Vtime.zero in
  Engine.spawn engine 1 (fun () -> ());
  Engine.spawn engine 0 (fun () ->
      Transport.send tr ~src:0 ~dst:1 ~bytes:16 ~deliver:(fun h -> at := Engine.hnow h));
  Engine.run engine;
  check Alcotest.bool "served after the window" true (!at >= Vtime.ms 5);
  check Alcotest.int "no retransmissions" 0 (Transport.retransmissions tr);
  check Alcotest.int "no acks" 1 (Transport.messages_sent tr)

let unreachable_peer_suspected () =
  (* A permanently partitioned peer must surface as a suspicion once the
     retry budget is exhausted — not hang, and not abort the run with an
     exception from inside a timer callback.  Without an on_suspect
     consumer the run stops cleanly, stats intact. *)
  let plan = Fault_plan.with_unreachable Fault_plan.none 1 in
  let engine, tr = make ~plan () in
  Engine.spawn engine 1 (fun () -> ());
  Engine.spawn engine 0 (fun () ->
      ignore (Transport.rpc tr ~src:0 ~dst:1 ~bytes:8 ~serve:(fun _ -> (8, ()))));
  Engine.run engine;
  check Alcotest.int "one suspicion" 1 (Transport.suspicions tr);
  check Alcotest.bool "run stopped cleanly" true (Engine.stop_reason engine <> None);
  check Alcotest.bool "stats survived" true (Transport.messages_sent tr > 0)

let suspicion_reaches_callback () =
  (* With a registered failure detector the transport reports the stuck
     peer instead of terminating; the callback sees src/dst/attempts. *)
  let plan = Fault_plan.with_unreachable Fault_plan.none 1 in
  let engine, tr = make ~plan () in
  let seen = ref None in
  Transport.on_suspect tr (fun ~src ~dst ~label:_ ~attempts ->
      if !seen = None then seen := Some (src, dst, attempts));
  Engine.spawn engine 1 (fun () -> ());
  Engine.spawn engine 0 (fun () ->
      Transport.send tr ~src:0 ~dst:1 ~bytes:8 ~deliver:(fun _ -> ()));
  Engine.run engine;
  match !seen with
  | None -> Alcotest.fail "expected the suspicion callback to fire"
  | Some (src, dst, attempts) ->
    check Alcotest.int "src" 0 src;
    check Alcotest.int "dst" 1 dst;
    check Alcotest.int "attempts capped at the budget"
      Params.atm_aal34.Params.max_retransmits attempts;
    check Alcotest.bool "callback keeps the run alive" true
      (Engine.stop_reason engine = None)

let transport_runs_are_deterministic () =
  let run () =
    let engine, tr = make ~plan:(lossy 0.2) ~seed:11L () in
    Engine.spawn engine 1 (fun () -> ());
    Engine.spawn engine 0 (fun () ->
        for _ = 1 to 25 do
          ignore (Transport.rpc tr ~src:0 ~dst:1 ~bytes:64 ~serve:(fun _ -> (64, ())))
        done);
    Engine.run engine;
    (Engine.end_time engine, Transport.messages_sent tr, Transport.retransmissions tr)
  in
  let a = run () and b = run () in
  check Alcotest.bool "same seed+plan reproduces the run exactly" true (a = b)

(* ------------------------------------------------------------------ *)
(* End-to-end: applications under faults                               *)

(* Each application run under a fault plan must produce exactly the
   result of the fault-free run with the same seed — the §3.7 reliability
   layer makes the medium's misbehaviour invisible to the DSM. *)

let run_jacobi faults =
  let p = { Jacobi.default with Jacobi.rows = 40; cols = 32; iters = 6 } in
  let out = ref None in
  let r =
    Api.run
      (cfg ~faults ~nprocs:4 ~pages:(Jacobi.pages_needed p) ())
      (fun ctx -> match Jacobi.parallel ctx p with Some g -> out := Some g | None -> ())
  in
  (Option.get !out, r)

let run_tsp faults =
  let p = { Tsp.default with Tsp.ncities = 9; prefix_depth = 3 } in
  let out = ref None in
  let r =
    Api.run
      (cfg ~faults ~nprocs:4 ~pages:(Tsp.pages_needed p) ())
      (fun ctx -> match Tsp.parallel ctx p with Some x -> out := Some x | None -> ())
  in
  ((Option.get !out).Tsp.best, r)

let run_quicksort faults =
  let p = { Quicksort.default with Quicksort.n = 2048; threshold = 256 } in
  let out = ref None in
  let r =
    Api.run
      (cfg ~faults ~nprocs:4 ~pages:(Quicksort.pages_needed p) ())
      (fun ctx ->
        match Quicksort.parallel ctx p with Some a -> out := Some a | None -> ())
  in
  (Option.get !out, r)

let run_water faults =
  let p = { Water.default with Water.nmol = 27; steps = 2 } in
  let out = ref None in
  let r =
    Api.run
      (cfg ~faults ~nprocs:4 ~pages:(Water.pages_needed p) ())
      (fun ctx -> match Water.parallel ctx p with Some x -> out := Some x | None -> ())
  in
  let w = Option.get !out in
  ((w.Water.energy, w.Water.positions), r)

let run_ilink faults =
  let p = { Ilink.default with Ilink.families = 12; iterations = 3 } in
  let out = ref None in
  let r =
    Api.run
      (cfg ~faults ~nprocs:4 ~pages:(Ilink.pages_needed p) ())
      (fun ctx -> match Ilink.parallel ctx p with Some x -> out := Some x | None -> ())
  in
  let i = Option.get !out in
  ((i.Ilink.log_likelihood, i.Ilink.theta), r)

let app_result_immune_to_loss (type a) name (run : Fault_plan.t -> a * Api.run_result) ()
    =
  let clean, _ = run Fault_plan.none in
  let faulty, r = run (lossy 0.05) in
  if clean <> faulty then Alcotest.failf "%s result changed under 5%% loss" name;
  check Alcotest.bool "retransmissions happened" true (r.Api.retransmissions > 0)

let app_result_immune_to_mixed_faults () =
  (* loss + duplication + reordering + a mid-run stall, all at once *)
  let plan =
    Fault_plan.with_stall
      (Fault_plan.with_reorder ~window:(Vtime.us 300)
         (Fault_plan.with_dup (lossy 0.03) 0.03)
         0.05)
      ~pid:2 ~start:(Vtime.ms 2) ~len:(Vtime.ms 3)
  in
  let clean, _ = run_jacobi Fault_plan.none in
  let faulty, r = run_jacobi plan in
  check Alcotest.bool "grid identical" true (clean = faulty);
  check Alcotest.bool "retransmissions happened" true (r.Api.retransmissions > 0)

let dsm_run_deterministic_under_loss () =
  let _, a = run_water (lossy 0.1) in
  let _, b = run_water (lossy 0.1) in
  check Alcotest.int "same end time" a.Api.total_time b.Api.total_time;
  check Alcotest.int "same messages" a.Api.messages b.Api.messages;
  check Alcotest.int "same retransmissions" a.Api.retransmissions b.Api.retransmissions

let dsm_dedup_drains_after_lossy_run () =
  let _, r = run_jacobi (lossy 0.1) in
  let tr = Protocol.transport r.Api.cluster in
  check Alcotest.int "dedup table empty at end" 0 (Transport.dedup_entries tr);
  check Alcotest.int "event queue empty at end" 0
    (Engine.pending_events (Protocol.engine r.Api.cluster))

let suite =
  [
    Alcotest.test_case "plan validation" `Quick plan_validation;
    Alcotest.test_case "per-link loss override" `Quick plan_link_loss;
    Alcotest.test_case "stall_until chains windows" `Quick plan_stall_until;
    Alcotest.test_case "parse_stalls" `Quick plan_parse_stalls;
    Alcotest.test_case "backoff doubles to a cap" `Quick backoff_schedule;
    Alcotest.test_case "dedup table drains" `Quick dedup_table_drains;
    Alcotest.test_case "reset_stats clears dedup" `Quick reset_stats_clears_dedup;
    Alcotest.test_case "duplication suppressed" `Quick duplication_suppressed;
    Alcotest.test_case "reordering exactly once" `Quick reordering_is_exactly_once;
    Alcotest.test_case "stalls delay delivery" `Quick stalls_delay_delivery;
    Alcotest.test_case "unreachable peer suspected" `Quick unreachable_peer_suspected;
    Alcotest.test_case "suspicion reaches callback" `Quick suspicion_reaches_callback;
    Alcotest.test_case "transport deterministic" `Quick transport_runs_are_deterministic;
    Alcotest.test_case "jacobi immune to loss" `Quick
      (app_result_immune_to_loss "jacobi" run_jacobi);
    Alcotest.test_case "tsp immune to loss" `Quick
      (app_result_immune_to_loss "tsp" run_tsp);
    Alcotest.test_case "quicksort immune to loss" `Quick
      (app_result_immune_to_loss "quicksort" run_quicksort);
    Alcotest.test_case "water immune to loss" `Quick
      (app_result_immune_to_loss "water" run_water);
    Alcotest.test_case "ilink immune to loss" `Quick
      (app_result_immune_to_loss "ilink" run_ilink);
    Alcotest.test_case "jacobi immune to mixed faults" `Quick
      app_result_immune_to_mixed_faults;
    Alcotest.test_case "lossy dsm runs deterministic" `Quick
      dsm_run_deterministic_under_loss;
    Alcotest.test_case "dsm dedup drains" `Quick dsm_dedup_drains_after_lossy_run;
  ]
